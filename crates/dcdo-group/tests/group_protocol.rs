//! Integration tests for the epoch round itself: fencing, stale refusal,
//! fence-timeout recovery, quorum fallback, and abort.

mod common;

use common::{control_reply, invoke_reply, send_control, send_invoke, Courier};
use dcdo_group::{
    deploy_group, EpochPrepare, GroupClient, GroupCoordinator, GroupReplica, ProposalResult,
    ProposeConfig, ReplicaStatus,
};
use dcdo_group::{ConfigDelta, ProbeReplica};
use dcdo_sim::{check_trace_invariants, NetConfig, NodeId, SimDuration, Simulation};
use legion_substrate::{ControlOp, InvocationFault, Msg};

fn new_sim(seed: u64) -> Simulation<Msg> {
    let mut sim = Simulation::new(NetConfig::centurion(), seed);
    sim.spans_mut().enable();
    sim
}

fn replica_nodes(n: u32) -> Vec<NodeId> {
    (1..=n).map(NodeId::from_raw).collect()
}

#[test]
fn a_proposal_commits_and_every_replica_adopts_the_epoch() {
    let mut sim = new_sim(3);
    let dep = deploy_group(&mut sim, 1, NodeId::from_raw(5), &replica_nodes(4), 1);
    let courier = sim.spawn(NodeId::from_raw(6), Courier::default());
    let call = send_control(
        &mut sim,
        courier,
        dep.coordinator,
        dep.coordinator_object,
        ControlOp::new(ProposeConfig {
            group: 1,
            delta: ConfigDelta::new().with_version(2).upgrading([0]),
        }),
    );
    sim.run_for(SimDuration::from_secs(1));
    sim.run_until_idle();

    let result = control_reply(&sim, courier, call)
        .expect("proposal resolved")
        .expect("not a fault");
    let result = result.downcast_ref::<ProposalResult>().expect("typed");
    assert!(result.committed);
    assert_eq!(result.epoch, 1);

    for r in &dep.replicas {
        let rep = sim.actor::<GroupReplica>(r.actor).expect("alive");
        assert_eq!(rep.epoch(), 1);
        assert_eq!(rep.config().digest(), result.config_digest);
        assert!(!rep.is_fenced());
    }
    // Replica 0 runs v2 now; the others still serve v1 — mid-rollout
    // mixed-version states are first-class.
    let v: Vec<u32> = dep
        .replicas
        .iter()
        .map(|r| {
            sim.actor::<GroupReplica>(r.actor)
                .expect("alive")
                .running_version()
        })
        .collect();
    assert_eq!(v, [2, 1, 1, 1]);
    assert_eq!(check_trace_invariants(sim.spans()), vec![]);
}

#[test]
fn fenced_replicas_refuse_invokes_until_commit_or_timeout() {
    let mut sim = new_sim(11);
    let dep = deploy_group(&mut sim, 1, NodeId::from_raw(5), &replica_nodes(3), 1);
    let courier = sim.spawn(NodeId::from_raw(6), Courier::default());
    let target = dep.replicas[0];

    // Fence member 0 by hand with a prepare no coordinator will resolve.
    send_control(
        &mut sim,
        courier,
        target.actor,
        target.object,
        ControlOp::new(EpochPrepare {
            group: 1,
            epoch: 1,
            joined_digest: 0xdead,
        }),
    );
    sim.run_for(SimDuration::from_millis(10));
    assert!(sim
        .actor::<GroupReplica>(target.actor)
        .expect("alive")
        .is_fenced());

    let refused = send_invoke(&mut sim, courier, target.actor, target.object, "work");
    sim.run_for(SimDuration::from_millis(10));
    assert!(matches!(
        invoke_reply(&sim, courier, refused),
        Some(Err(InvocationFault::Refused(_)))
    ));

    // No commit ever comes: the fence timeout reverts the replica to the
    // last committed epoch and it serves again.
    sim.run_for(SimDuration::from_millis(500));
    assert!(!sim
        .actor::<GroupReplica>(target.actor)
        .expect("alive")
        .is_fenced());
    let served = send_invoke(&mut sim, courier, target.actor, target.object, "work");
    sim.run_for(SimDuration::from_millis(10));
    assert!(matches!(invoke_reply(&sim, courier, served), Some(Ok(_))));
    assert_eq!(
        sim.actor::<GroupReplica>(target.actor)
            .expect("alive")
            .epoch(),
        0,
        "an unresolved round must not advance the epoch"
    );
    assert_eq!(check_trace_invariants(sim.spans()), vec![]);
}

#[test]
fn stale_prepares_and_commits_are_refused_or_ignored() {
    let mut sim = new_sim(17);
    let dep = deploy_group(&mut sim, 1, NodeId::from_raw(5), &replica_nodes(3), 1);
    let courier = sim.spawn(NodeId::from_raw(6), Courier::default());

    // Commit epoch 1 normally first.
    send_control(
        &mut sim,
        courier,
        dep.coordinator,
        dep.coordinator_object,
        ControlOp::new(ProposeConfig {
            group: 1,
            delta: ConfigDelta::new().with_param(0, 9),
        }),
    );
    sim.run_for(SimDuration::from_secs(1));

    // A prepare for epoch 1 is now stale: typed refusal, no fence.
    let target = dep.replicas[1];
    let stale = send_control(
        &mut sim,
        courier,
        target.actor,
        target.object,
        ControlOp::new(EpochPrepare {
            group: 1,
            epoch: 1,
            joined_digest: 1,
        }),
    );
    sim.run_for(SimDuration::from_millis(10));
    assert!(matches!(
        control_reply(&sim, courier, stale),
        Some(Err(InvocationFault::Refused(_)))
    ));
    assert!(!sim
        .actor::<GroupReplica>(target.actor)
        .expect("alive")
        .is_fenced());
    assert_eq!(
        sim.actor::<GroupReplica>(target.actor)
            .expect("alive")
            .epoch(),
        1
    );
    assert_eq!(check_trace_invariants(sim.spans()), vec![]);
}

#[test]
fn quorum_commits_at_the_deadline_when_a_minority_is_down() {
    let mut sim = new_sim(23);
    let dep = deploy_group(&mut sim, 1, NodeId::from_raw(6), &replica_nodes(5), 1);
    // Two of five replicas die before the round: the all-ack fast path is
    // unreachable, but three acks are a majority at the deadline.
    sim.crash_node(dep.replicas[3].node);
    sim.crash_node(dep.replicas[4].node);
    let courier = sim.spawn(NodeId::from_raw(7), Courier::default());
    let call = send_control(
        &mut sim,
        courier,
        dep.coordinator,
        dep.coordinator_object,
        ControlOp::new(ProposeConfig {
            group: 1,
            delta: ConfigDelta::new().with_version(2).upgrading([0, 1, 2]),
        }),
    );
    sim.run_for(SimDuration::from_secs(1));
    sim.run_until_idle();

    let result = control_reply(&sim, courier, call)
        .expect("proposal resolved")
        .expect("not a fault");
    let result = result.downcast_ref::<ProposalResult>().expect("typed");
    assert!(result.committed, "majority at the deadline commits");
    assert_eq!(result.epoch, 1);
    for r in &dep.replicas[..3] {
        assert_eq!(
            sim.actor::<GroupReplica>(r.actor).expect("alive").epoch(),
            1
        );
    }
    assert_eq!(
        sim.actor::<GroupCoordinator>(dep.coordinator)
            .expect("alive")
            .committed_rounds(),
        1
    );
    assert_eq!(check_trace_invariants(sim.spans()), vec![]);
}

#[test]
fn a_minority_of_acks_aborts_the_round_and_unfences_survivors() {
    let mut sim = new_sim(29);
    let dep = deploy_group(&mut sim, 1, NodeId::from_raw(6), &replica_nodes(5), 1);
    // Three of five down: no quorum, the round must abort.
    sim.crash_node(dep.replicas[2].node);
    sim.crash_node(dep.replicas[3].node);
    sim.crash_node(dep.replicas[4].node);
    let courier = sim.spawn(NodeId::from_raw(7), Courier::default());
    let call = send_control(
        &mut sim,
        courier,
        dep.coordinator,
        dep.coordinator_object,
        ControlOp::new(ProposeConfig {
            group: 1,
            delta: ConfigDelta::new().with_version(2),
        }),
    );
    sim.run_for(SimDuration::from_secs(1));
    sim.run_until_idle();

    let result = control_reply(&sim, courier, call)
        .expect("proposal resolved")
        .expect("not a fault");
    let result = result.downcast_ref::<ProposalResult>().expect("typed");
    assert!(!result.committed, "minority must not commit");
    for r in &dep.replicas[..2] {
        let rep = sim.actor::<GroupReplica>(r.actor).expect("alive");
        assert_eq!(rep.epoch(), 0, "aborted round leaves the epoch alone");
        assert!(!rep.is_fenced(), "abort unfences the survivors");
    }
    assert_eq!(
        sim.actor::<GroupCoordinator>(dep.coordinator)
            .expect("alive")
            .aborted_rounds(),
        1
    );
    assert_eq!(check_trace_invariants(sim.spans()), vec![]);
}

#[test]
fn probes_report_health_version_and_counters() {
    let mut sim = new_sim(31);
    let dep = dcdo_group::deploy_group_with(
        &mut sim,
        1,
        NodeId::from_raw(5),
        &replica_nodes(2),
        1,
        |r| r.with_unhealthy_from_version(2),
    );
    let courier = sim.spawn(NodeId::from_raw(6), Courier::default());
    let probe = send_control(
        &mut sim,
        courier,
        dep.replicas[0].actor,
        dep.replicas[0].object,
        ControlOp::new(ProbeReplica),
    );
    sim.run_for(SimDuration::from_millis(10));
    let status = control_reply(&sim, courier, probe)
        .expect("probe resolved")
        .expect("not a fault");
    let status = status
        .downcast_ref::<ReplicaStatus>()
        .expect("typed")
        .clone();
    assert_eq!(status.member, 0);
    assert_eq!(status.epoch, 0);
    assert_eq!(status.version, 1);
    assert!(status.healthy, "fault only arms at version >= 2");

    // Upgrade member 0 to v2: the planted fault now reports unhealthy.
    send_control(
        &mut sim,
        courier,
        dep.coordinator,
        dep.coordinator_object,
        ControlOp::new(ProposeConfig {
            group: 1,
            delta: ConfigDelta::new().with_version(2).upgrading([0]),
        }),
    );
    sim.run_for(SimDuration::from_secs(1));
    let probe2 = send_control(
        &mut sim,
        courier,
        dep.replicas[0].actor,
        dep.replicas[0].object,
        ControlOp::new(ProbeReplica),
    );
    sim.run_for(SimDuration::from_millis(10));
    let status2 = control_reply(&sim, courier, probe2)
        .expect("probe resolved")
        .expect("not a fault");
    let status2 = status2
        .downcast_ref::<ReplicaStatus>()
        .expect("typed")
        .clone();
    assert_eq!(status2.version, 2);
    assert!(!status2.healthy);
    assert_eq!(check_trace_invariants(sim.spans()), vec![]);
}

#[test]
fn sustained_traffic_across_a_reconfiguration_only_sees_typed_refusals() {
    let run = |seed: u64, threads: u32| {
        let mut sim = new_sim(seed);
        sim.set_threads(threads);
        let dep = deploy_group(&mut sim, 1, NodeId::from_raw(5), &replica_nodes(4), 1);
        let client = sim.spawn(
            NodeId::from_raw(6),
            GroupClient::new(
                dep.replica_targets(),
                SimDuration::from_millis(2),
                SimDuration::from_millis(800),
            ),
        );
        sim.with_actor::<GroupClient, _>(client, |c, ctx| c.start(ctx));
        let courier = sim.spawn(NodeId::from_raw(7), Courier::default());
        sim.run_for(SimDuration::from_millis(200));
        send_control(
            &mut sim,
            courier,
            dep.coordinator,
            dep.coordinator_object,
            ControlOp::new(ProposeConfig {
                group: 1,
                delta: ConfigDelta::new().with_version(2).upgrading([0, 1, 2, 3]),
            }),
        );
        sim.run_for(SimDuration::from_secs(1));
        sim.run_until_idle();
        let c = sim.actor::<GroupClient>(client).expect("alive");
        (
            c.sent(),
            c.ok(),
            c.refused(),
            c.failed(),
            sim.spans().digest(),
            { check_trace_invariants(sim.spans()).len() },
        )
    };
    let (sent, ok, refused, failed, digest, violations) = run(41, 1);
    assert!(sent >= 300, "sustained traffic ran ({sent} sent)");
    assert!(ok >= sent - refused - failed);
    assert_eq!(failed, 0, "only typed fence refusals are acceptable");
    assert!(
        refused < sent / 10,
        "fence window must be brief ({refused}/{sent} refused)"
    );
    assert_eq!(violations, 0);

    // The exact same run at 4 threads is byte-identical.
    let (sent4, ok4, refused4, failed4, digest4, violations4) = run(41, 4);
    assert_eq!((sent4, ok4, refused4, failed4), (sent, ok, refused, failed));
    assert_eq!(digest4, digest, "span digest byte-equal at 1 vs 4 threads");
    assert_eq!(violations4, 0);
}

//! Rolling upgrades under fire: the full canary → 25% → 100% orchestration
//! with sustained traffic, a planted-unhealthy rollback, and the chaos
//! composition — a `FaultPlan` crashing the wave coordinator at every wave
//! boundary. The group must either complete or roll back cleanly, with
//! zero trace violations and same-seed replay hashes.

mod common;

use dcdo_chaos::{trace_hash, ChaosController, FaultPlan};
use dcdo_group::{
    deploy_group, deploy_group_with, GroupClient, GroupReplica, RolloutDriver, RolloutPlan,
    RolloutState,
};
use dcdo_sim::{check_trace_invariants, NetConfig, NodeId, SimDuration, Simulation};
use legion_substrate::Msg;

const REPLICAS: u32 = 4;
const COORD_NODE: u32 = 5;
const CLIENT_NODE: u32 = 6;
const DRIVER_NODE: u32 = 7;
// Node 0 hosts the chaos controller: no plan ever crashes it.
const CHAOS_NODE: u32 = 0;

const WINDOW: SimDuration = SimDuration::from_secs(2);

fn plan() -> RolloutPlan {
    RolloutPlan::canary_then_waves(
        1,
        2,
        SimDuration::from_millis(100),
        SimDuration::from_millis(300),
    )
}

struct RunResult {
    state: RolloutState,
    waves_committed: u32,
    replica_epochs: Vec<u64>,
    replica_digests: Vec<u64>,
    replica_versions: Vec<u32>,
    any_fenced: bool,
    client_sent: u64,
    client_ok: u64,
    client_failed: u64,
    violations: Vec<dcdo_sim::Violation>,
    span_digest: u64,
    trace_hash: u64,
}

/// Deploys group + client + rollout driver (+ an optional fault plan on
/// node 0), runs the window, and reports the end state.
fn run_rollout(
    seed: u64,
    threads: u32,
    faults: Option<FaultPlan>,
    unhealthy_canary: bool,
) -> RunResult {
    let mut sim: Simulation<Msg> = Simulation::new(NetConfig::centurion(), seed);
    sim.set_threads(threads);
    sim.spans_mut().enable();
    sim.trace_mut().enable(1 << 18);
    let replica_nodes: Vec<NodeId> = (1..=REPLICAS).map(NodeId::from_raw).collect();
    let dep = deploy_group_with(
        &mut sim,
        1,
        NodeId::from_raw(COORD_NODE),
        &replica_nodes,
        1,
        |r| {
            if unhealthy_canary {
                r.with_unhealthy_from_version(2)
            } else {
                r
            }
        },
    );
    let client = sim.spawn(
        NodeId::from_raw(CLIENT_NODE),
        GroupClient::new(dep.replica_targets(), SimDuration::from_millis(2), WINDOW),
    );
    sim.with_actor::<GroupClient, _>(client, |c, ctx| c.start(ctx));
    let driver =
        RolloutDriver::install(&mut sim, NodeId::from_raw(DRIVER_NODE), dep.clone(), plan());
    if let Some(p) = faults {
        ChaosController::install(&mut sim, NodeId::from_raw(CHAOS_NODE), p);
    }
    sim.run_for(WINDOW);
    sim.run_until_idle();

    let d = sim.actor::<RolloutDriver>(driver).expect("driver alive");
    let mut replica_epochs = Vec::new();
    let mut replica_digests = Vec::new();
    let mut replica_versions = Vec::new();
    let mut any_fenced = false;
    for r in &dep.replicas {
        let rep = sim.actor::<GroupReplica>(r.actor).expect("replica alive");
        replica_epochs.push(rep.epoch());
        replica_digests.push(rep.config().digest());
        replica_versions.push(rep.running_version());
        any_fenced |= rep.is_fenced();
    }
    // The client's node may have been crashed by the fault plan.
    let (client_sent, client_ok, client_failed) = sim
        .actor::<GroupClient>(client)
        .map(|c| (c.sent(), c.ok(), c.failed()))
        .unwrap_or((0, 0, 0));
    RunResult {
        state: d.state(),
        waves_committed: d.waves_committed(),
        replica_epochs,
        replica_digests,
        replica_versions,
        any_fenced,
        client_sent,
        client_ok,
        client_failed,
        violations: check_trace_invariants(sim.spans()),
        span_digest: sim.spans().digest(),
        trace_hash: trace_hash(sim.trace()),
    }
}

#[test]
fn rolling_upgrade_completes_under_sustained_traffic() {
    let r = run_rollout(101, 1, None, false);
    assert_eq!(r.state, RolloutState::Completed);
    assert_eq!(r.waves_committed, 3);
    // Canary, 25% (same single member for 4 replicas), then 100%.
    assert!(r.replica_epochs.iter().all(|&e| e == 3));
    assert!(r.replica_versions.iter().all(|&v| v == 2));
    assert_eq!(
        r.replica_digests
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        1
    );
    assert!(!r.any_fenced);
    assert!(r.client_sent >= 500);
    assert_eq!(r.client_failed, 0);
    assert!(
        r.client_ok >= r.client_sent * 9 / 10,
        "fence windows must stay brief ({} ok of {})",
        r.client_ok,
        r.client_sent
    );
    assert_eq!(r.violations, vec![]);

    // Byte-identical at 4 threads, same seed.
    let r4 = run_rollout(101, 4, None, false);
    assert_eq!(r4.state, RolloutState::Completed);
    assert_eq!(r4.span_digest, r.span_digest);
    assert_eq!(r4.trace_hash, r.trace_hash);
}

#[test]
fn an_unhealthy_canary_rolls_the_group_back() {
    let r = run_rollout(103, 1, None, true);
    assert_eq!(r.state, RolloutState::RolledBack);
    assert_eq!(r.waves_committed, 1, "only the canary wave committed");
    // Canary epoch + rollback epoch.
    assert!(r.replica_epochs.iter().all(|&e| e == 2));
    assert!(
        r.replica_versions.iter().all(|&v| v == 1),
        "rollback re-pins the base version everywhere"
    );
    assert_eq!(
        r.replica_digests
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        1
    );
    assert!(!r.any_fenced);
    assert_eq!(r.client_failed, 0);
    assert_eq!(r.violations, vec![]);

    let r4 = run_rollout(103, 4, None, true);
    assert_eq!(r4.state, RolloutState::RolledBack);
    assert_eq!(r4.span_digest, r.span_digest);
    assert_eq!(r4.trace_hash, r.trace_hash);
}

#[test]
fn coordinator_crash_at_each_wave_boundary_completes_or_rolls_back_cleanly() {
    let p = plan();
    for (i, wave) in p.waves.iter().enumerate() {
        // Crash the coordinator 2ms after the wave's proposal leaves the
        // driver: mid-round, before the commit can resolve.
        let faults = FaultPlan::new().crash_at(
            wave.at + SimDuration::from_millis(2),
            NodeId::from_raw(COORD_NODE),
        );
        let seed = 200 + i as u64;
        let r = run_rollout(seed, 1, Some(faults.clone()), false);
        assert!(
            matches!(r.state, RolloutState::Completed | RolloutState::RolledBack),
            "wave {i}: rollout must complete or roll back, got {:?}",
            r.state
        );
        // Whatever happened, the group converged: one configuration,
        // nobody fenced, traffic only ever saw typed refusals.
        assert_eq!(
            r.replica_digests
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            1,
            "wave {i}: replicas must agree on one config"
        );
        assert!(!r.any_fenced, "wave {i}: fences must clear");
        assert_eq!(r.client_failed, 0, "wave {i}: no untyped failures");
        assert_eq!(r.violations, vec![], "wave {i}: zero trace violations");
        // The rollout never half-applies a wave: committed waves show up
        // as whole epochs, the crashed wave not at all.
        assert!(
            r.replica_epochs
                .iter()
                .all(|&e| e == r.waves_committed as u64),
            "wave {i}: epochs {:?} must equal committed waves {}",
            r.replica_epochs,
            r.waves_committed
        );

        // Same-seed replay is byte-identical, seq and 4-threaded.
        let replay = run_rollout(seed, 1, Some(faults.clone()), false);
        assert_eq!(replay.trace_hash, r.trace_hash, "wave {i}: replay hash");
        assert_eq!(replay.span_digest, r.span_digest);
        let par = run_rollout(seed, 4, Some(faults), false);
        assert_eq!(par.trace_hash, r.trace_hash, "wave {i}: 4-thread hash");
        assert_eq!(par.span_digest, r.span_digest);
    }
}

#[test]
fn crashing_the_coordinator_between_waves_strands_no_fences() {
    // Crash *between* wave 1 and wave 2: wave 1 commits, wave 2's proposal
    // goes to a dead coordinator, the driver's deadline rolls the wave back.
    let faults =
        FaultPlan::new().crash_at(SimDuration::from_millis(250), NodeId::from_raw(COORD_NODE));
    let r = run_rollout(211, 1, Some(faults), false);
    assert_eq!(r.state, RolloutState::RolledBack);
    assert_eq!(r.waves_committed, 1);
    assert!(r.replica_epochs.iter().all(|&e| e == 1));
    assert!(!r.any_fenced);
    assert_eq!(r.violations, vec![]);
    // The canary keeps running v2 — rolling back the *in-flight* wave
    // cannot undo a committed epoch without a live coordinator.
    assert_eq!(r.replica_versions[0], 2);
    assert!(r.replica_versions[1..].iter().all(|&v| v == 1));
}

#[test]
fn the_deployment_survives_an_uninvolved_node_crash() {
    // Sanity composition: crashing the *client's* node mid-rollout leaves
    // the reconfiguration protocol untouched.
    let faults =
        FaultPlan::new().crash_at(SimDuration::from_millis(350), NodeId::from_raw(CLIENT_NODE));
    let r = run_rollout(223, 1, Some(faults), false);
    assert_eq!(r.state, RolloutState::Completed);
    assert!(r.replica_versions.iter().all(|&v| v == 2));
    assert_eq!(r.violations, vec![]);
}

#[test]
fn group_deployment_is_deterministic_across_seeds_only() {
    // Different seeds change delivery jitter and thus the trace; the
    // protocol outcome stays the same.
    let a = run_rollout(301, 1, None, false);
    let b = run_rollout(302, 1, None, false);
    assert_ne!(a.trace_hash, b.trace_hash, "seed must matter");
    assert_eq!(a.state, RolloutState::Completed);
    assert_eq!(b.state, RolloutState::Completed);
    assert_eq!(a.replica_digests, b.replica_digests);
    let _ = deploy_group; // silence unused import when features shift
}

//! The lattice-agreement oracle.
//!
//! Two layers of property testing:
//!
//! 1. Pure lattice laws — join is commutative, associative, idempotent,
//!    and `join_all` is permutation-invariant, digests included.
//! 2. Protocol-level convergence — random sets of concurrent config
//!    proposals, issued within one batching round under random seeds
//!    (delivery orders) and at 1 vs 4 engine threads, leave every replica
//!    at the identical joined epoch with byte-equal config digests, and
//!    the 1-thread and 4-thread runs produce byte-identical span digests.

mod common;

use common::Courier;
use dcdo_group::ProposeConfig;
use dcdo_group::{deploy_group, ConfigDelta, GroupConfig, GroupCoordinator, GroupReplica};
use dcdo_sim::{check_trace_invariants, NetConfig, NodeId, SimDuration, Simulation};
use dcdo_types::CallId;
use legion_substrate::{ControlOp, Msg};
use proptest::prelude::*;

// ---- strategies ---------------------------------------------------------

const MEMBERS: u32 = 4;

fn arb_delta() -> impl Strategy<Value = ConfigDelta> {
    (
        (0u32..6).prop_map(|v| if v >= 2 { Some(v) } else { None }),
        prop::collection::vec(0u32..MEMBERS, 0..4),
        prop::collection::vec(0u32..MEMBERS, 0..2),
        prop::collection::vec((0u32..3, 1u64..100), 0..3),
    )
        .prop_map(|(version, upgrade, downgrade, params)| {
            let mut d = ConfigDelta::new().upgrading(upgrade).downgrading(downgrade);
            if let Some(v) = version {
                d = d.with_version(v);
            }
            for (k, v) in params {
                d = d.with_param(k, v);
            }
            d
        })
}

// ---- pure lattice laws --------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn join_laws_hold(a in arb_delta(), b in arb_delta(), c in arb_delta()) {
        // Commutativity, associativity, idempotence — by value and digest.
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        prop_assert_eq!(a.join(&a), a.clone());
        prop_assert_eq!(a.join(&b).digest(), b.join(&a).digest());
        // Bottom is the identity.
        prop_assert_eq!(a.join(&ConfigDelta::new()), a.clone());
    }

    #[test]
    fn join_all_is_permutation_invariant(
        deltas in prop::collection::vec(arb_delta(), 1..5),
        rotate in 0usize..5,
        apply_seed in 1u32..10,
    ) {
        let joined = ConfigDelta::join_all(&deltas);
        // A rotation plus a reversal cover enough of the permutation group
        // given commutativity + associativity already hold pairwise.
        let k = rotate % deltas.len();
        let mut rotated: Vec<_> = deltas[k..].to_vec();
        rotated.extend_from_slice(&deltas[..k]);
        prop_assert_eq!(ConfigDelta::join_all(&rotated), joined.clone());
        let reversed: Vec<_> = deltas.iter().rev().cloned().collect();
        prop_assert_eq!(ConfigDelta::join_all(&reversed), joined.clone());
        // Applying the same joined delta to the same config is a function.
        let base = GroupConfig::initial(0..MEMBERS, apply_seed);
        prop_assert_eq!(base.apply(&joined).digest(), base.apply(&joined).digest());
    }
}

// ---- protocol-level convergence -----------------------------------------

/// One proposal to fire: the proposer courier sends `delta` at `at`.
struct Shot {
    delta: ConfigDelta,
    at: SimDuration,
}

/// What a run converged to.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    replica_epochs: Vec<u64>,
    replica_digests: Vec<u64>,
    coordinator_digest: u64,
    span_digest: u64,
    violations: usize,
}

/// Runs `shots` (all inside one batching round) against a fresh group and
/// reports where every replica ended up.
fn run_round(seed: u64, threads: u32, shots: &[Shot]) -> Outcome {
    let mut sim: Simulation<Msg> = Simulation::new(NetConfig::centurion(), seed);
    sim.set_threads(threads);
    sim.spans_mut().enable();
    let replica_nodes: Vec<NodeId> = (1..=MEMBERS).map(NodeId::from_raw).collect();
    let dep = deploy_group(&mut sim, 1, NodeId::from_raw(5), &replica_nodes, 1);
    // Widen the batching round so every staggered shot joins one epoch.
    sim.actor_mut::<GroupCoordinator>(dep.coordinator)
        .expect("coordinator alive")
        .set_round_delay(SimDuration::from_millis(20));
    // One proposer per shot, on distinct nodes so delivery order varies
    // with the seed: advance to each shot time and fire from a courier.
    let mut order: Vec<usize> = (0..shots.len()).collect();
    order.sort_by_key(|&i| shots[i].at);
    let mut now = SimDuration::ZERO;
    for i in order {
        let shot = &shots[i];
        if shot.at > now {
            sim.run_for(shot.at - now);
            now = shot.at;
        }
        let proposer = sim.spawn(NodeId::from_raw(6 + i as u32), Courier::default());
        let delta = shot.delta.clone();
        sim.with_actor::<Courier, _>(proposer, |_, ctx| {
            let call = CallId::from_raw(ctx.fresh_u64());
            ctx.send(
                dep.coordinator,
                Msg::Control {
                    call,
                    target: dep.coordinator_object,
                    op: ControlOp::new(ProposeConfig { group: 1, delta }),
                },
            );
        });
    }
    sim.run_for(SimDuration::from_secs(1));
    sim.run_until_idle();

    let mut replica_epochs = Vec::new();
    let mut replica_digests = Vec::new();
    for r in &dep.replicas {
        let rep = sim.actor::<GroupReplica>(r.actor).expect("replica alive");
        replica_epochs.push(rep.epoch());
        replica_digests.push(rep.config().digest());
    }
    let coordinator_digest = sim
        .actor::<GroupCoordinator>(dep.coordinator)
        .expect("coordinator alive")
        .config()
        .digest();
    Outcome {
        replica_epochs,
        replica_digests,
        coordinator_digest,
        span_digest: sim.spans().digest(),
        violations: check_trace_invariants(sim.spans()).len(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn concurrent_proposals_join_to_one_epoch_at_any_thread_count(
        seed in 0u64..1_000_000,
        deltas in prop::collection::vec(arb_delta(), 1..4),
        staggers in prop::collection::vec(0u64..15, 3),
    ) {
        let shots: Vec<Shot> = deltas
            .iter()
            .zip(&staggers)
            .map(|(d, &ms)| Shot {
                delta: d.clone(),
                at: SimDuration::from_millis(ms),
            })
            .collect();
        let seq = run_round(seed, 1, &shots);
        let par = run_round(seed, 4, &shots);

        // All proposals landed in one round: every replica is at epoch 1
        // with the digest predicted by the pure lattice.
        let joined = ConfigDelta::join_all(deltas.iter());
        let expected = GroupConfig::initial(0..MEMBERS, 1).apply(&joined).digest();
        for (&e, &d) in seq.replica_epochs.iter().zip(&seq.replica_digests) {
            prop_assert_eq!(e, 1, "replica converged to the joined epoch");
            prop_assert_eq!(d, expected, "replica config matches the lattice oracle");
        }
        prop_assert_eq!(seq.coordinator_digest, expected);
        prop_assert_eq!(seq.violations, 0, "no invariant violations");

        // Thread count is invisible: byte-identical outcomes and spans.
        prop_assert_eq!(&par.replica_epochs, &seq.replica_epochs);
        prop_assert_eq!(&par.replica_digests, &seq.replica_digests);
        prop_assert_eq!(par.span_digest, seq.span_digest, "span digests byte-equal at 1 vs 4 threads");
        prop_assert_eq!(par.violations, 0);
    }
}

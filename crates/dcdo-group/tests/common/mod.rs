//! Shared harness bits for the group test battery.
#![allow(dead_code)] // each test binary uses a different subset

use dcdo_sim::{Actor, ActorId, Ctx, Simulation};
use dcdo_types::{CallId, ObjectId};
use legion_substrate::{ControlOp, InvocationFault, Msg};

/// A scripted endpoint: records every reply it receives, so tests can send
/// protocol messages from a real actor (the engine requires a sender) and
/// assert on what came back.
#[derive(Default)]
pub struct Courier {
    /// Control replies, in arrival order.
    pub control_replies: Vec<(CallId, Result<ControlOp, InvocationFault>)>,
    /// Invoke replies, in arrival order.
    pub invoke_replies: Vec<(CallId, Result<dcdo_vm::Value, InvocationFault>)>,
}

impl Actor<Msg> for Courier {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: ActorId, msg: Msg) {
        match msg {
            Msg::ControlReply { call, result } => self.control_replies.push((call, result)),
            Msg::Reply { call, result } => self.invoke_replies.push((call, result)),
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "courier"
    }
}

/// Sends a control op from `courier` to `(to, target)` at the current sim
/// time; returns the call id to correlate the reply.
pub fn send_control(
    sim: &mut Simulation<Msg>,
    courier: ActorId,
    to: ActorId,
    target: ObjectId,
    op: ControlOp,
) -> CallId {
    sim.with_actor::<Courier, _>(courier, |_, ctx| {
        let call = CallId::from_raw(ctx.fresh_u64());
        ctx.send(to, Msg::Control { call, target, op });
        call
    })
}

/// Sends an invoke from `courier` to `(to, target)` at the current sim
/// time; returns the call id to correlate the reply.
pub fn send_invoke(
    sim: &mut Simulation<Msg>,
    courier: ActorId,
    to: ActorId,
    target: ObjectId,
    function: &str,
) -> CallId {
    let function = function.to_string();
    sim.with_actor::<Courier, _>(courier, |_, ctx| {
        let call = CallId::from_raw(ctx.fresh_u64());
        ctx.send(
            to,
            Msg::Invoke {
                call,
                target,
                function: function.into(),
                args: vec![],
            },
        );
        call
    })
}

/// The reply a call got on the courier, if any.
pub fn control_reply(
    sim: &Simulation<Msg>,
    courier: ActorId,
    call: CallId,
) -> Option<Result<ControlOp, InvocationFault>> {
    sim.actor::<Courier>(courier)?
        .control_replies
        .iter()
        .find(|(c, _)| *c == call)
        .map(|(_, r)| r.clone())
}

/// The invoke reply a call got on the courier, if any.
pub fn invoke_reply(
    sim: &Simulation<Msg>,
    courier: ActorId,
    call: CallId,
) -> Option<Result<dcdo_vm::Value, InvocationFault>> {
    sim.actor::<Courier>(courier)?
        .invoke_replies
        .iter()
        .find(|(c, _)| *c == call)
        .map(|(_, r)| r.clone())
}

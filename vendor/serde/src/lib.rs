//! Offline stand-in for the `serde` facade.
//!
//! The repository's actual serialization is the hand-rolled binary codec in
//! `dcdo-vm`; `Serialize`/`Deserialize` derives on model types are
//! declarations of intent only. This stub provides the two marker traits and
//! re-exports the no-op derive macros so the workspace builds without
//! registry access. Swap back to the real `serde` when a network is
//! available — no call sites need to change.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace's wire formats are hand-rolled (`dcdo-vm/src/codec.rs`);
//! the `Serialize`/`Deserialize` derives on model types only declare intent.
//! These stubs accept the same syntax (including `#[serde(...)]` helper
//! attributes) and emit nothing, which keeps the workspace building in
//! offline environments with no crates.io access.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attributes; emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attributes; emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset the simulator's [`SimRng`] wrapper uses: a
//! deterministic [`rngs::StdRng`] seedable from a `u64`, and
//! `random_range` over integer and float ranges. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic across platforms,
//! which is all the discrete-event simulator requires (it never claims
//! stream compatibility with the real `rand`).

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand::Rng::random_range`.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample itself from an RNG.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u128) - (start as u128) + 1;
                (start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        // 53-bit resolution over the closed interval.
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // Defer to the inherent method (callable without this trait in
            // scope, matching how callers use rand's `StdRng`).
            StdRng::next_u64(self)
        }
    }

    impl StdRng {
        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng as _, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u64 = a.random_range(10..20);
            assert_eq!(x, b.random_range(10..20));
            assert!((10..20).contains(&x));
            let f: f64 = a.random_range(0.0..1.0);
            let _ = b.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let g: f64 = a.random_range(0.0..=1.0);
            let _ = b.random_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}

//! Offline mini benchmark harness, API-compatible with the subset of
//! `criterion` 0.x this workspace uses.
//!
//! Unlike the other vendor stubs, this one does real work: each benchmark
//! is warmed up, then timed over several batches with `std::time::Instant`,
//! and the median ns/iter is printed. No statistical analysis, plotting, or
//! HTML reports — just stable, comparable numbers so before/after tables in
//! EXPERIMENTS.md are measurable. Swap back to the real `criterion` when a
//! registry is reachable; call sites need no changes.

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group (`BenchmarkId::new(name, param)`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Uses the parameter alone as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the median ns/iter across batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and discover a batch size targeting ~5ms per batch.
        let mut iters_per_batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters_per_batch >= 1 << 30 {
                break;
            }
            iters_per_batch *= 2;
        }

        const BATCHES: usize = 11;
        let mut samples = [0f64; BATCHES];
        for sample in &mut samples {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                std::hint::black_box(routine());
            }
            *sample = start.elapsed().as_nanos() as f64 / iters_per_batch as f64;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[BATCHES / 2];
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        self.run(&id, f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into().0;
        self.run(&id, |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        let mut bencher = Bencher { ns_per_iter: 0.0 };
        f(&mut bencher);
        self.criterion.report(&full, bencher.ns_per_iter);
    }
}

/// Conversion glue so bench ids can be `&str`, `String`, or [`BenchmarkId`].
pub struct BenchId(String);

impl From<&str> for BenchId {
    fn from(s: &str) -> Self {
        BenchId(s.to_string())
    }
}

impl From<String> for BenchId {
    fn from(s: String) -> Self {
        BenchId(s)
    }
}

impl From<BenchmarkId> for BenchId {
    fn from(id: BenchmarkId) -> Self {
        BenchId(id.id)
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs and reports one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        let mut bencher = Bencher { ns_per_iter: 0.0 };
        f(&mut bencher);
        self.report(&id, bencher.ns_per_iter);
        self
    }

    fn report(&mut self, id: &str, ns: f64) {
        let human = if ns >= 1_000_000.0 {
            format!("{:.3} ms", ns / 1_000_000.0)
        } else if ns >= 1_000.0 {
            format!("{:.3} µs", ns / 1_000.0)
        } else {
            format!("{ns:.1} ns")
        };
        println!("{id:<50} {human:>12}/iter");
        self.results.push((id.to_string(), ns));
    }

    /// `--bench` harness entry point; prints a header per registered group fn.
    pub fn final_summary(&self) {}
}

/// Registers benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a set of [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filters) to bench
            // binaries; this mini-harness runs everything regardless.
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_a_trivial_workload() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.bench_function("add", |b| b.iter(|| 2u64 + 2));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.finish();
        assert_eq!(c.results.len(), 2);
        assert!(c.results.iter().all(|(_, ns)| *ns >= 0.0));
    }
}

//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` 1.x API the workspace uses: cheaply
//! clonable immutable [`Bytes`] (shared `Arc<[u8]>` plus a view range), a
//! growable [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor traits with the
//! big-endian accessors the component codec relies on. Drop-in compatible
//! for those call sites; swap back to the real crate when a registry is
//! reachable.

use std::ops::{Deref, Range, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable slice of shared memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let Range { start, end } = resolve_range(range, self.len());
        assert!(
            start <= end && self.start + end <= self.end,
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

fn resolve_range(range: impl RangeBounds<usize>, len: usize) -> Range<usize> {
    use std::ops::Bound;
    let start = match range.start_bound() {
        Bound::Included(&n) => n,
        Bound::Excluded(&n) => n + 1,
        Bound::Unbounded => 0,
    };
    let end = match range.end_bound() {
        Bound::Included(&n) => n + 1,
        Bound::Excluded(&n) => n,
        Bound::Unbounded => len,
    };
    start..end
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end: len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts the buffer into immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte source (big-endian accessors).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// All `get_*` methods panic if the source is exhausted; callers check
    /// `remaining()` first (as the codec's `Reader::need` does).
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    /// Reads `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes past end");
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

/// Write cursor over a growable byte sink (big-endian writers).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Writes a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Writes a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut w = BytesMut::new();
        w.put_u8(1);
        w.put_u16(2);
        w.put_u32(3);
        w.put_u64(4);
        w.put_i64(-5);
        let mut b = w.freeze();
        assert_eq!(b.remaining(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.get_u16(), 2);
        assert_eq!(b.get_u32(), 3);
        assert_eq!(b.get_u64(), 4);
        assert_eq!(b.get_i64(), -5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slices_share_and_compare() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        assert_eq!(b.slice(..), b);
        let mut cursor = b.clone();
        let taken = cursor.copy_to_bytes(2);
        assert_eq!(taken.as_ref(), &[1, 2]);
        assert_eq!(cursor.remaining(), 3);
    }
}

//! Offline mini property-testing engine, API-compatible with the subset of
//! `proptest` 1.x this workspace uses.
//!
//! Real randomized generation (deterministically seeded per test name and
//! case index), but **no shrinking**: a failing case reports the generated
//! values verbatim. Supported surface:
//!
//! - [`Strategy`] with `prop_map`, `prop_flat_map`, `prop_recursive`,
//!   `boxed`;
//! - strategies for numeric ranges, `bool`/ints via [`any`], [`Just`],
//!   tuples, `Vec<S>`, and string-literal patterns (a small regex subset:
//!   literals, `[...]` classes, `\PC`, and `{m,n}` repetition);
//! - `prop::collection::vec`;
//! - the `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//!   `prop_assert_ne!`, and `prop_assume!` macros;
//! - [`ProptestConfig::with_cases`].
//!
//! Swap back to the real `proptest` when a registry is reachable; call
//! sites need no changes.

use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf, `f` lifts a strategy
    /// for the type into a strategy for one more level of nesting. `depth`
    /// bounds the nesting; the size/branch hints are accepted for
    /// compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let mut strat = self.boxed();
        let leaf = strat.clone();
        for _ in 0..depth {
            strat = Union::new(vec![leaf.clone(), f(strat).boxed()]).boxed();
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, moderately sized floats.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128) - (start as i128) + 1;
                (start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// String pattern strategies
// ---------------------------------------------------------------------------

/// Atoms of the supported pattern subset.
enum PatternAtom {
    /// Choose uniformly from these characters.
    Class(Vec<char>),
    /// A literal character.
    Literal(char),
}

struct PatternPiece {
    atom: PatternAtom,
    min: usize,
    max: usize,
}

/// Printable candidates for `\PC` (anything not in Unicode category C).
fn printable_candidates() -> Vec<char> {
    let mut v: Vec<char> = (0x20u8..0x7F).map(|b| b as char).collect();
    v.extend(['é', 'λ', '中', '→', '𝕏', 'ß', 'Ω']);
    v
}

fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unterminated character class")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty character class");
                i = close + 1;
                PatternAtom::Class(set)
            }
            '\\' => {
                // Only the `\PC` (printable) escape is supported, plus
                // escaped literals like `\.`.
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    PatternAtom::Class(printable_candidates())
                } else {
                    let c = *chars.get(i + 1).expect("dangling escape");
                    i += 2;
                    PatternAtom::Literal(c)
                }
            }
            c => {
                i += 1;
                PatternAtom::Literal(c)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition"),
                    hi.trim().parse().expect("bad repetition"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(PatternPiece { atom, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let n = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..n {
                match &piece.atom {
                    PatternAtom::Class(set) => out.push(set[rng.below(set.len())]),
                    PatternAtom::Literal(c) => out.push(*c),
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// `prop::collection` and friends.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// A size specification for generated collections.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        /// Strategy for vectors of `element` with a length in `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates `Vec`s whose elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.min + rng.below(self.size.max - self.size.min + 1);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure (mirrors proptest's constructor).
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection (mirrors proptest's constructor).
    pub fn reject(_reason: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

/// Drives the cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
}

impl TestRunner {
    /// Creates a runner whose random stream is determined by the test name.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a of the name: deterministic, stable across runs.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { config, seed }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The RNG for one case.
    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng::seed(self.seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let runner = $crate::TestRunner::new($config, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for(case);
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    // Render inputs up front: the body may move them.
                    let inputs = format!("{:#?}", ($(&$arg,)+));
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match result {
                        Ok(()) | Err($crate::TestCaseError::Reject) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` failed at case {}: {}\ninputs: {}",
                                stringify!($name),
                                case,
                                msg,
                                inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts inside a property body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{}\n  both: {:?}",
            format!($($fmt)*),
            left
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
        TestRunner, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn patterns_generate_matching_strings() {
        let mut rng = TestRng::seed(7);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase(), "{s:?}");
        }
        let p = Strategy::generate(&"\\PC{0,400}", &mut rng);
        assert!(p.chars().count() <= 400);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro machinery works end-to-end.
        #[test]
        fn addition_commutes(a in 0u64..1000, b in any::<u64>()) {
            prop_assume!(b < u64::MAX / 2);
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
            prop_assert!(a < 1000);
            prop_assert_ne!(a, a + 1);
        }

        /// Unions, maps, and vec strategies compose.
        #[test]
        fn composed_strategies(
            xs in prop::collection::vec(prop_oneof![Just(1u8), 2u8..5], 1..10),
            s in "[A-F]{2,4}",
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            prop_assert!(xs.iter().all(|&x| (1..5).contains(&x)));
            prop_assert!((2..=4).contains(&s.len()));
        }
    }
}

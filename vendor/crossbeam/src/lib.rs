//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides exactly the `crossbeam::channel` subset this workspace uses —
//! `bounded`, `unbounded`, cloneable `Sender`s, `Receiver`, and the
//! matching error types — implemented on top of `std::sync::mpsc`. The API
//! mirrors the real crate for the operations used (`send`, `recv`,
//! `try_recv`, `iter`), so swapping the real `crossbeam` back in requires
//! no call-site changes. It does not reproduce crossbeam's lock-free
//! performance characteristics; correctness and blocking semantics match.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone; carries
    /// the unsent message back.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// Every sender is gone and the channel is drained.
        Disconnected,
    }

    enum SenderImpl<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    /// The sending half of a channel. Cloneable, like crossbeam's.
    pub struct Sender<T>(SenderImpl<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                SenderImpl::Bounded(s) => SenderImpl::Bounded(s.clone()),
                SenderImpl::Unbounded(s) => SenderImpl::Unbounded(s.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderImpl::Bounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
                SenderImpl::Unbounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Returns immediately with a message, `Empty`, or `Disconnected`.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocking iterator over incoming messages; ends when all senders
        /// disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Creates a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::sync_channel(cap);
        (Sender(SenderImpl::Bounded(s)), Receiver(r))
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::channel();
        (Sender(SenderImpl::Unbounded(s)), Receiver(r))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_round_trip_across_threads() {
            let (tx, rx) = bounded::<u32>(1);
            let tx2 = tx.clone();
            std::thread::scope(|s| {
                s.spawn(move || {
                    tx.send(1).unwrap();
                });
                s.spawn(move || {
                    tx2.send(2).unwrap();
                });
                let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
                got.sort_unstable();
                assert_eq!(got, vec![1, 2]);
            });
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn unbounded_iter_drains_until_disconnect() {
            let (tx, rx) = unbounded::<u32>();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<u32> = rx.iter().collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
            assert!(rx.recv().is_err());
        }

        #[test]
        fn send_to_dropped_receiver_returns_message() {
            let (tx, rx) = unbounded::<String>();
            drop(rx);
            let err = tx.send("hello".to_owned()).unwrap_err();
            assert_eq!(err.0, "hello");
        }
    }
}
